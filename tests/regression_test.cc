#include "util/regression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vdba {
namespace {

TEST(FitLinearTest, ExactLine) {
  auto fit = FitLinear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-9);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

TEST(FitLinearTest, NoisyLineRecovered) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.Uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(4.0 * xi - 2.0 + rng.Gaussian(0.0, 0.1));
  }
  auto fit = FitLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 4.0, 0.05);
  EXPECT_NEAR(fit->intercept, -2.0, 0.2);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(FitLinearTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLinear({1}, {2}).ok());
  EXPECT_FALSE(FitLinear({1, 2}, {2}).ok());
  EXPECT_FALSE(FitLinear({3, 3, 3}, {1, 2, 3}).ok());
}

TEST(FitProportionalTest, ThroughOrigin) {
  auto fit = FitProportional({1, 2, 4}, {2.5, 5.0, 10.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.5, 1e-9);
  EXPECT_EQ(fit->intercept, 0.0);
}

TEST(SolveLinearSystemTest, TwoByTwo) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  auto sol = SolveLinearSystem({{2, 1}, {1, -1}}, {5, 1});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR((*sol)[0], 2.0, 1e-9);
  EXPECT_NEAR((*sol)[1], 1.0, 1e-9);
}

TEST(SolveLinearSystemTest, SingularRejected) {
  auto sol = SolveLinearSystem({{1, 2}, {2, 4}}, {3, 6});
  EXPECT_FALSE(sol.ok());
}

TEST(SolveLinearSystemTest, PivotingHandlesZeroDiagonal) {
  // 0x + y = 1; x + 0y = 2 requires a row swap.
  auto sol = SolveLinearSystem({{0, 1}, {1, 0}}, {1, 2});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR((*sol)[0], 2.0, 1e-9);
  EXPECT_NEAR((*sol)[1], 1.0, 1e-9);
}

TEST(FitMultiLinearTest, TwoFeatureExact) {
  // y = 3*a + 5*b + 7.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a = 0; a < 4; ++a) {
    for (double b = 0; b < 4; ++b) {
      rows.push_back({a, b});
      y.push_back(3 * a + 5 * b + 7);
    }
  }
  auto fit = FitMultiLinear(rows, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[1], 5.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[2], 7.0, 1e-5);
  EXPECT_NEAR(fit->Eval({2.0, 2.0}), 23.0, 1e-5);
}

TEST(FitMultiLinearTest, UnderDeterminedRejected) {
  EXPECT_FALSE(FitMultiLinear({{1.0, 2.0}}, {3.0}).ok());
}

}  // namespace
}  // namespace vdba
