// AdvisorService: event-queue FIFO under concurrent producers, warm
// repair bit-identity on no-op drift, targeted cache invalidation
// (only the drifted/departed tenant's entries go), admission onto the
// least-loaded machine, and graceful shutdown draining in-flight events.
#include "service/advisor_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "scenario/scenario.h"
#include "util/event_queue.h"
#include "workload/tpch.h"

namespace vdba::service {
namespace {

using advisor::FleetMachine;
using advisor::QosSpec;
using advisor::Tenant;

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, FifoUnderConcurrentProducers) {
  // 4 producers push (producer, seq) pairs concurrently; one consumer
  // drains. MPSC FIFO means each producer's pairs come out in seq order
  // (global interleaving across producers is unspecified).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  EventQueue<std::pair<int, int>> queue;

  std::vector<std::pair<int, int>> popped;
  std::thread consumer([&] {
    while (std::optional<std::pair<int, int>> item = queue.WaitPop()) {
      popped.push_back(*item);
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(std::make_pair(p, i)));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();

  ASSERT_EQ(popped.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::vector<int> next_seq(kProducers, 0);
  for (const auto& [producer, seq] : popped) {
    EXPECT_EQ(seq, next_seq[static_cast<size_t>(producer)])
        << "producer " << producer << " reordered";
    ++next_seq[static_cast<size_t>(producer)];
  }
}

TEST(EventQueueTest, CloseRefusesNewPushesButDrainsAcceptedOnes) {
  EventQueue<int> queue;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(int{i}));
  queue.Close();
  EXPECT_FALSE(queue.Push(int{99}));
  for (int i = 0; i < 5; ++i) {
    std::optional<int> got = queue.WaitPop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(queue.WaitPop().has_value());
}

TEST(EventQueueTest, ProducersRacingCloseLoseNoEventAndLeakNoPromise) {
  // Regression for the Close() promise-completion path: 4 producers
  // hammer Push while the main thread closes mid-stream. The contract
  // under the race: every ACCEPTED event is drained (and its promise
  // resolved by the consumer), every REFUSED event stays with its
  // producer (Push does not consume on refusal) so the producer can
  // resolve its promise — the AdvisorService::Enqueue pattern. Nothing
  // may be lost or resolved twice.
  struct Item {
    int producer = -1;
    std::promise<int> done;
  };
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;
  EventQueue<Item> queue;

  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  std::atomic<int> drained{0};
  std::thread consumer([&] {
    while (std::optional<Item> item = queue.WaitPop()) {
      drained.fetch_add(1);
      item->done.set_value(1);  // handled
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    futures[static_cast<size_t>(p)].reserve(kPerProducer);
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Item item;
        item.producer = p;
        futures[static_cast<size_t>(p)].push_back(item.done.get_future());
        if (queue.Push(std::move(item))) {
          accepted.fetch_add(1);
        } else {
          refused.fetch_add(1);
          item.done.set_value(0);  // refused — the producer completes it
        }
      }
    });
  }
  // Close somewhere in the middle of the hammering.
  while (accepted.load() < kPerProducer / 2) std::this_thread::yield();
  queue.Close();
  for (std::thread& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained.load(), accepted.load()) << "accepted event lost";
  int handled = 0;
  for (auto& per_producer : futures) {
    for (std::future<int>& f : per_producer) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "a promise never completed";
      handled += f.get();
    }
  }
  EXPECT_EQ(handled, accepted.load());
}

// ---------------------------------------------------------------------------
// AdvisorService
// ---------------------------------------------------------------------------

scenario::Testbed& TB() {
  static scenario::Testbed tb = [] {
    scenario::TestbedOptions options;
    options.with_sf10 = false;
    options.with_tpcc = false;
    return scenario::Testbed(options);
  }();
  return tb;
}

/// Tenant i: alternating CPU-hungry (Q18) / I/O-bound (Q21) TPC-H work,
/// sizes spread so machines are genuinely contended.
Tenant ServiceTenant(int i, double weight = 2.0) {
  scenario::Testbed& tb = TB();
  simdb::Workload w;
  w.AddStatement(workload::TpchQuery(tb.tpch_sf1(), i % 2 == 0 ? 18 : 21),
                 weight + i);
  return tb.MakeTenant(i % 2 == 0 ? tb.db2_sf1() : tb.pg_sf1(), w);
}

ServiceOptions SingleMachineOptions() {
  ServiceOptions options;
  // Keep single-machine tests migration-free regardless of saturation.
  options.saturation_threshold = std::numeric_limits<double>::infinity();
  return options;
}

TEST(AdvisorServiceTest, FirstArrivalMatchesColdBatchSolve) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  EventOutcome out = service.SubmitArrival(ServiceTenant(0)).get();
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.tenant, 0);
  EXPECT_EQ(out.machine, 0);

  advisor::VirtualizationDesignAdvisor cold(TB().machine(),
                                            {ServiceTenant(0)});
  advisor::Recommendation want = cold.Recommend();
  FleetSnapshot snap = service.Snapshot();
  ASSERT_EQ(snap.allocations.size(), 1u);
  EXPECT_EQ(snap.allocations[0], want.allocations[0]);
  EXPECT_DOUBLE_EQ(snap.objective, want.objective);
}

TEST(AdvisorServiceTest, NoOpDriftReturnsTheIncumbentBitIdentical) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.SubmitArrival(ServiceTenant(i)).get().ok);
  }
  FleetSnapshot before = service.Snapshot();

  // Re-submit tenant 1's workload unchanged: the warm repair must
  // terminate at the incumbent and commit it bit-identically.
  EventOutcome out =
      service.SubmitDrift(1, ServiceTenant(1).workload).get();
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.machine, 0);

  FleetSnapshot after = service.Snapshot();
  ASSERT_EQ(after.allocations.size(), before.allocations.size());
  for (size_t i = 0; i < before.allocations.size(); ++i) {
    EXPECT_EQ(after.allocations[i], before.allocations[i]) << i;
    EXPECT_DOUBLE_EQ(after.estimated_seconds[i],
                     before.estimated_seconds[i])
        << i;
  }
  EXPECT_DOUBLE_EQ(after.objective, before.objective);
  EXPECT_EQ(after.violated_qos, before.violated_qos);
}

TEST(AdvisorServiceTest, DriftInvalidatesOnlyTheDriftedTenant) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.SubmitArrival(ServiceTenant(i)).get().ok);
  }
  const advisor::WhatIfCostEstimator* est = service.machine_estimator(0);
  ASSERT_NE(est, nullptr);
  const size_t obs0 = est->observations(0).size();
  const size_t obs1 = est->observations(1).size();
  const size_t obs2 = est->observations(2).size();
  ASSERT_GT(obs1, 0u);
  const long hits_before = est->cache_hits();

  // No-op drift on tenant 1 (slot 1): its log is cleared and repopulated
  // by the repair's probes; tenants 0 and 2 keep their logs EXACTLY —
  // every one of their repair probes must hit the still-warm cache.
  ASSERT_TRUE(service.SubmitDrift(1, ServiceTenant(1).workload).get().ok);

  EXPECT_EQ(est->observations(0).size(), obs0);
  EXPECT_EQ(est->observations(2).size(), obs2);
  EXPECT_GT(est->observations(1).size(), 0u);
  EXPECT_LE(est->observations(1).size(), obs1);
  EXPECT_GT(est->cache_hits(), hits_before);

  // Departure evicts the departing tenant's log; the survivors' stay.
  ASSERT_TRUE(service.SubmitDeparture(1).get().ok);
  EXPECT_EQ(est->observations(1).size(), 0u);
  EXPECT_GT(est->observations(0).size(), 0u);
  EXPECT_GT(est->observations(2).size(), 0u);
}

TEST(AdvisorServiceTest, DepartureRedistributesTheFreedShare) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.SubmitArrival(ServiceTenant(i)).get().ok);
  }
  FleetSnapshot before = service.Snapshot();
  ASSERT_TRUE(service.SubmitDeparture(0).get().ok);
  FleetSnapshot after = service.Snapshot();

  EXPECT_EQ(after.assignment[0], -1);
  EXPECT_EQ(after.active_tenants, 2);
  // The freed share must not stay stranded: each survivor ends at least
  // as well off as at its pre-departure allocation (the repair seeds
  // redistribute the share, and the keep-incumbent guard only ever
  // improves from there).
  for (int id : {1, 2}) {
    EXPECT_LE(after.estimated_seconds[static_cast<size_t>(id)],
              before.estimated_seconds[static_cast<size_t>(id)] + 1e-9)
        << id;
  }
}

TEST(AdvisorServiceTest, ArrivalsLandOnTheLeastLoadedFeasibleMachine) {
  scenario::Testbed& tb = TB();
  std::vector<FleetMachine> machines(
      2, FleetMachine{tb.machine(), &tb.pg_calibration(),
                      &tb.db2_calibration()});
  ServiceOptions options;
  options.saturation_threshold = std::numeric_limits<double>::infinity();
  AdvisorService service(machines, options);

  // First tenant: both machines idle, FFD ties to machine 0. Second:
  // machine 0 now carries load, so the least-loaded outcome is machine 1.
  EventOutcome first = service.SubmitArrival(ServiceTenant(0, 8.0)).get();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.machine, 0);
  EventOutcome second = service.SubmitArrival(ServiceTenant(1, 8.0)).get();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.machine, 1);

  FleetSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.active_tenants, 2);
  EXPECT_EQ(snap.assignment, (std::vector<int>{0, 1}));
}

TEST(AdvisorServiceTest, StopDrainsInFlightEventsAndRefusesLaterOnes) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  // Queue a burst and stop immediately: every accepted event must still
  // be handled (Close() starts the drain, it does not drop).
  std::vector<std::future<EventOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.SubmitArrival(ServiceTenant(i)));
  }
  service.Stop();
  for (size_t i = 0; i < futures.size(); ++i) {
    EventOutcome out = futures[i].get();
    EXPECT_TRUE(out.ok) << i << ": " << out.error;
  }
  EXPECT_EQ(service.Snapshot().active_tenants, 4);
  EXPECT_EQ(service.Snapshot().events_handled, 4);

  EventOutcome refused = service.SubmitArrival(ServiceTenant(9)).get();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error, "service stopped");
}

TEST(AdvisorServiceTest, InvalidEventsAreRefusedWithoutStateDamage) {
  AdvisorService service({FleetMachine{TB().machine()}},
                         SingleMachineOptions());
  ASSERT_TRUE(service.SubmitArrival(ServiceTenant(0)).get().ok);
  FleetSnapshot before = service.Snapshot();

  EXPECT_FALSE(service.SubmitDeparture(7).get().ok);
  EXPECT_FALSE(service.SubmitDrift(-1, ServiceTenant(0).workload).get().ok);
  Tenant engineless;
  EXPECT_FALSE(service.SubmitArrival(engineless).get().ok);

  FleetSnapshot after = service.Snapshot();
  EXPECT_EQ(after.active_tenants, before.active_tenants);
  EXPECT_DOUBLE_EQ(after.objective, before.objective);
  // Refused events still count as handled (they went through the loop).
  EXPECT_EQ(after.events_handled, before.events_handled + 3);
}

// ---------------------------------------------------------------------------
// Multi-worker service: the PR-8 serial repair-quality assertions must
// survive the sharded loop (dispatcher + per-machine lanes) verbatim.
// ---------------------------------------------------------------------------

ServiceOptions TwoMachineOptions(int workers) {
  ServiceOptions options;
  options.saturation_threshold = std::numeric_limits<double>::infinity();
  options.workers = workers;
  return options;
}

std::vector<FleetMachine> TwoMachines() {
  scenario::Testbed& tb = TB();
  return std::vector<FleetMachine>(
      2, FleetMachine{tb.machine(), &tb.pg_calibration(),
                      &tb.db2_calibration()});
}

TEST(AdvisorServiceMultiWorkerTest, NoOpDriftBitIdenticalUnderShardedLoop) {
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AdvisorService service(TwoMachines(), TwoMachineOptions(workers));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(service.SubmitArrival(ServiceTenant(i)).get().ok);
    }
    FleetSnapshot before = service.Snapshot();

    EventOutcome out =
        service.SubmitDrift(1, ServiceTenant(1).workload).get();
    ASSERT_TRUE(out.ok) << out.error;

    FleetSnapshot after = service.Snapshot();
    ASSERT_EQ(after.allocations.size(), before.allocations.size());
    EXPECT_EQ(after.assignment, before.assignment);
    for (size_t i = 0; i < before.allocations.size(); ++i) {
      EXPECT_EQ(after.allocations[i], before.allocations[i]) << i;
      EXPECT_DOUBLE_EQ(after.estimated_seconds[i],
                       before.estimated_seconds[i])
          << i;
    }
    EXPECT_DOUBLE_EQ(after.objective, before.objective);
    EXPECT_EQ(after.violated_qos, before.violated_qos);
  }
}

TEST(AdvisorServiceMultiWorkerTest, DepartureRedistributesUnderShardedLoop) {
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AdvisorService service(TwoMachines(), TwoMachineOptions(workers));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(service.SubmitArrival(ServiceTenant(i)).get().ok);
    }
    FleetSnapshot before = service.Snapshot();
    EventOutcome out = service.SubmitDeparture(0).get();
    ASSERT_TRUE(out.ok) << out.error;
    FleetSnapshot after = service.Snapshot();

    EXPECT_EQ(after.assignment[0], -1);
    EXPECT_EQ(after.active_tenants, 3);
    // The departed tenant's machine-mates absorb the freed share: no
    // survivor of that machine ends worse than its pre-departure cost;
    // tenants on OTHER machines are untouched bit-identically (lanes are
    // machine-local).
    for (size_t id = 1; id < 4; ++id) {
      if (before.assignment[id] == out.machine) {
        EXPECT_LE(after.estimated_seconds[id],
                  before.estimated_seconds[id] + 1e-9)
            << id;
      } else {
        EXPECT_EQ(after.allocations[id], before.allocations[id]) << id;
        EXPECT_DOUBLE_EQ(after.estimated_seconds[id],
                         before.estimated_seconds[id])
            << id;
      }
    }
  }
}

}  // namespace
}  // namespace vdba::service
