// The pluggable SearchStrategy layer: factory round-trips, greedy parity
// with the direct call, and quality ordering between strategies.
#include "advisor/search_strategy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "advisor/advisor.h"
#include "advisor/greedy_enumerator.h"
#include "scenario/scenario.h"
#include "workload/tpch.h"

namespace vdba::advisor {
namespace {

/// Synthetic estimator: Cost_i(R) = alpha_cpu[i]/cpu + alpha_mem[i]/mem +
/// beta[i]; closed-form and deterministic, so strategy comparisons are
/// exact.
class SyntheticEstimator : public CostEstimator {
 public:
  SyntheticEstimator(std::vector<double> alpha_cpu,
                     std::vector<double> alpha_mem, std::vector<double> beta)
      : alpha_cpu_(std::move(alpha_cpu)),
        alpha_mem_(std::move(alpha_mem)),
        beta_(std::move(beta)) {}

  double EstimateSeconds(int tenant, const simvm::ResourceVector& r) override {
    size_t i = static_cast<size_t>(tenant);
    return alpha_cpu_[i] / r.cpu_share() + alpha_mem_[i] / r.mem_share() +
           beta_[i];
  }
  int num_tenants() const override {
    return static_cast<int>(alpha_cpu_.size());
  }
  int num_dims() const override { return 2; }

 private:
  std::vector<double> alpha_cpu_, alpha_mem_, beta_;
};

TEST(SearchStrategyFactoryTest, RoundTripsEveryRegisteredName) {
  std::vector<std::string> names = RegisteredSearchStrategies();
  for (const char* expected :
       {"greedy", "exhaustive", "local_search", "greedy_refine", "dp_prune",
        "annealing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const std::string& name : names) {
    SearchSpec spec;
    spec.strategy = name;
    std::unique_ptr<SearchStrategy> strategy = MakeSearchStrategy(spec);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
  }
}

TEST(SearchStrategyFactoryTest, UnknownNameAborts) {
  SearchSpec spec;
  spec.strategy = "branch_and_bound";
  EXPECT_DEATH(MakeSearchStrategy(spec), "unknown search strategy");
}

TEST(SearchStrategyTest, ExhaustiveRecordsItsFallbackPastFourTenants) {
  // At N <= 4 the grid actually runs: the registry key is the truth.
  SyntheticEstimator small({36, 4}, {2, 8}, {0, 0});
  SearchSpec spec;
  spec.strategy = "exhaustive";
  EnumerationResult grid =
      MakeSearchStrategy(spec)->Run(&small, std::vector<QosSpec>(2), {});
  EXPECT_TRUE(grid.effective_strategy.empty());

  // At N > 4 it degenerates to local search and must say so.
  SyntheticEstimator big({30, 4, 9, 2, 17}, {2, 12, 3, 8, 1},
                         {0, 0, 0, 0, 0});
  EnumerationResult fallback =
      MakeSearchStrategy(spec)->Run(&big, std::vector<QosSpec>(5), {});
  EXPECT_EQ(fallback.effective_strategy, "exhaustive(fallback:local_search)");
}

TEST(SearchStrategyTest, GreedyViaStrategyIsBitIdenticalToDirectCall) {
  const std::vector<double> ac = {40, 5, 12}, am = {1, 20, 6},
                            b = {0, 0, 0};
  std::vector<QosSpec> qos(3);
  qos[1].gain_factor = 2.0;

  SyntheticEstimator direct_est(ac, am, b);
  GreedyEnumerator direct;
  EnumerationResult want = direct.Run(&direct_est, qos);

  SearchSpec spec;  // default strategy: greedy
  SyntheticEstimator strategy_est(ac, am, b);
  EnumerationResult got =
      MakeSearchStrategy(spec)->Run(&strategy_est, qos, {});

  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_DOUBLE_EQ(got.objective, want.objective);
  ASSERT_EQ(got.allocations.size(), want.allocations.size());
  for (size_t i = 0; i < want.allocations.size(); ++i) {
    EXPECT_EQ(got.allocations[i], want.allocations[i]) << i;
    EXPECT_DOUBLE_EQ(got.tenant_costs[i], want.tenant_costs[i]) << i;
  }
  EXPECT_EQ(got.violated_qos, want.violated_qos);
}

TEST(SearchStrategyTest, ExhaustiveBeatsOrTiesGreedyAtSmallN) {
  const std::vector<double> ac = {36, 4}, am = {2, 8}, b = {0, 0};
  std::vector<QosSpec> qos(2);
  SearchSpec spec;

  SyntheticEstimator greedy_est(ac, am, b);
  spec.strategy = "greedy";
  EnumerationResult greedy =
      MakeSearchStrategy(spec)->Run(&greedy_est, qos, {});

  SyntheticEstimator exhaustive_est(ac, am, b);
  spec.strategy = "exhaustive";
  EnumerationResult exhaustive =
      MakeSearchStrategy(spec)->Run(&exhaustive_est, qos, {});

  EXPECT_LE(exhaustive.objective, greedy.objective + 1e-9);
  EXPECT_TRUE(exhaustive.converged);
  EXPECT_GT(exhaustive.iterations, 0);  // objective evaluations
}

TEST(SearchStrategyTest, GreedyRefineBeatsOrTiesGreedy) {
  const std::vector<double> ac = {100, 1, 50, 2}, am = {1, 80, 2, 40},
                            b = {0, 0, 0, 0};
  std::vector<QosSpec> qos(4);
  SearchSpec spec;

  SyntheticEstimator greedy_est(ac, am, b);
  spec.strategy = "greedy";
  EnumerationResult greedy =
      MakeSearchStrategy(spec)->Run(&greedy_est, qos, {});

  SyntheticEstimator refine_est(ac, am, b);
  spec.strategy = "greedy_refine";
  EnumerationResult refined =
      MakeSearchStrategy(spec)->Run(&refine_est, qos, {});

  EXPECT_LE(refined.objective, greedy.objective + 1e-9);
}

TEST(SearchStrategyTest, LocalSearchFindsTheSkewedOptimum) {
  // One CPU-hungry tenant: hill climbing from 1/N must shift CPU hard.
  SyntheticEstimator est({50, 1}, {1, 1}, {0, 0});
  SearchSpec spec;
  spec.strategy = "local_search";
  EnumerationResult res =
      MakeSearchStrategy(spec)->Run(&est, std::vector<QosSpec>(2), {});
  EXPECT_GT(res.allocations[0].cpu_share(), 0.6);
  EXPECT_NEAR(
      res.allocations[0].cpu_share() + res.allocations[1].cpu_share(), 1.0,
      1e-9);
}

TEST(SearchStrategyTest, StrategiesRespectPinnedDimensionsFromInitial) {
  // CPU-only mode: every strategy must keep the caller's memory shares.
  SyntheticEstimator est({40, 5}, {3, 3}, {0, 0});
  std::vector<QosSpec> qos(2);
  std::vector<simvm::ResourceVector> init = {{0.5, 0.3}, {0.5, 0.3}};
  for (const std::string& name : RegisteredSearchStrategies()) {
    SearchSpec spec;
    spec.strategy = name;
    spec.enumerator.allocate[simvm::kMemDim] = false;
    EnumerationResult res = MakeSearchStrategy(spec)->Run(&est, qos, init);
    ASSERT_EQ(res.allocations.size(), 2u) << name;
    EXPECT_NEAR(res.allocations[0].mem_share(), 0.3, 1e-12) << name;
    EXPECT_NEAR(res.allocations[1].mem_share(), 0.3, 1e-12) << name;
  }
}

TEST(SearchStrategyTest, AdvisorRecordsStrategyNameAndObeysSpec) {
  static scenario::Testbed tb;
  simdb::Workload w1, w2;
  w1.AddStatement(workload::TpchQuery(tb.tpch_sf1(), 18), 5.0);
  w2.AddStatement(workload::TpchQuery(tb.tpch_sf1(), 21), 20.0);
  std::vector<Tenant> tenants = {tb.MakeTenant(tb.db2_sf1(), w1),
                                 tb.MakeTenant(tb.db2_sf1(), w2)};

  AdvisorOptions greedy_opts;
  VirtualizationDesignAdvisor greedy_adv(tb.machine(), tenants, greedy_opts);
  Recommendation greedy_rec = greedy_adv.Recommend();
  EXPECT_EQ(greedy_rec.strategy, "greedy");

  AdvisorOptions ex_opts;
  ex_opts.search.strategy = "exhaustive";
  VirtualizationDesignAdvisor ex_adv(tb.machine(), tenants, ex_opts);
  Recommendation ex_rec = ex_adv.Recommend();
  EXPECT_EQ(ex_rec.strategy, "exhaustive");

  // §4.5: greedy is within 5% of the exhaustive optimum on estimates.
  EXPECT_LE(ex_rec.objective, greedy_rec.objective + 1e-9);
  EXPECT_GE(greedy_rec.objective, ex_rec.objective * 0.999);
  EXPECT_LE(greedy_rec.objective, ex_rec.objective * 1.05);
}

}  // namespace
}  // namespace vdba::advisor
