#include "workload/units.h"

#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "workload/tpch.h"

namespace vdba::workload {
namespace {

TEST(UnitsTest, RepeatedWorkloadHoldsFrequency) {
  TpchDatabase db = MakeTpchDatabase(1.0);
  simdb::Workload w =
      MakeRepeatedQueryWorkload("u", TpchQuery(db, 6), 12.0);
  ASSERT_EQ(w.statements.size(), 1u);
  EXPECT_EQ(w.statements[0].frequency, 12.0);
  EXPECT_EQ(w.name, "u");
}

TEST(UnitsTest, MixUnitsScalesBothSides) {
  TpchDatabase db = MakeTpchDatabase(1.0);
  simdb::Workload a = MakeRepeatedQueryWorkload("a", TpchQuery(db, 6), 2.0);
  simdb::Workload b = MakeRepeatedQueryWorkload("b", TpchQuery(db, 1), 3.0);
  simdb::Workload mix = MixUnits("m", a, 4, b, 6);
  ASSERT_EQ(mix.statements.size(), 2u);
  EXPECT_EQ(mix.statements[0].frequency, 8.0);
  EXPECT_EQ(mix.statements[1].frequency, 18.0);
  // Zero units of one side are dropped entirely.
  simdb::Workload only_a = MixUnits("oa", a, 2, b, 0);
  EXPECT_EQ(only_a.statements.size(), 1u);
}

TEST(UnitsTest, CopiesToMatchProducesTargetDuration) {
  TpchDatabase db = MakeTpchDatabase(1.0);
  simdb::DbEngine engine("pg", simdb::EngineFlavor::kPostgres, db.catalog);
  simdb::RuntimeEnv env;
  env.cpu_ops_per_sec = 2.4e9;
  env.io_contention = 1.8;
  simdb::QuerySpec q = TpchQuery(db, 6);
  double one = engine.ExecuteQuery(q, env, 512).total_seconds();
  double copies = CopiesToMatch(engine, q, env, 512, 60.0);
  EXPECT_GE(copies, 1.0);
  EXPECT_NEAR(copies * one, 60.0, one);  // within one query of the target
}

TEST(UnitsTest, PaperUnitsMatchAtFullCpu) {
  // §7.3: C and I take the same time at 100% CPU (within one query).
  scenario::Testbed tb;
  const simdb::DbEngine& db2 = tb.db2_sf1();
  simdb::Workload c = tb.CpuIntensiveUnit(db2, tb.tpch_sf1());
  simdb::Workload i = tb.CpuLazyUnit(db2, tb.tpch_sf1());
  simvm::ResourceVector full{1.0, tb.CpuExperimentMemShare()};
  double tc = tb.hypervisor()->TrueWorkloadSeconds(db2, c, full);
  double ti = tb.hypervisor()->TrueWorkloadSeconds(db2, i, full);
  EXPECT_NEAR(tc / ti, 1.0, 0.35);
}

TEST(UnitsTest, CpuUnitsDifferInCpuIntensity) {
  scenario::Testbed tb;
  const simdb::DbEngine& db2 = tb.db2_sf1();
  simdb::Workload c = tb.CpuIntensiveUnit(db2, tb.tpch_sf1());
  simdb::Workload i = tb.CpuLazyUnit(db2, tb.tpch_sf1());
  simvm::ResourceVector vm{0.5, tb.CpuExperimentMemShare()};
  auto bc = tb.hypervisor()->TrueWorkloadBreakdown(db2, c, vm);
  auto bi = tb.hypervisor()->TrueWorkloadBreakdown(db2, i, vm);
  double frac_c = bc.cpu_seconds / bc.total_seconds();
  double frac_i = bi.cpu_seconds / bi.total_seconds();
  EXPECT_GT(frac_c, 0.5);
  EXPECT_LT(frac_i, 0.3);
}

}  // namespace
}  // namespace vdba::workload
