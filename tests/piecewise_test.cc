#include "util/piecewise.h"

#include <gtest/gtest.h>

namespace vdba {
namespace {

HyperbolicModel MakeModel(double a_cpu, double a_mem, double beta) {
  HyperbolicModel m;
  m.alphas = {a_cpu, a_mem};
  m.beta = beta;
  return m;
}

TEST(HyperbolicModelTest, EvalMatchesFormula) {
  HyperbolicModel m = MakeModel(10.0, 4.0, 3.0);
  // 10/0.5 + 4/0.25 + 3 = 20 + 16 + 3.
  EXPECT_NEAR(m.Eval({0.5, 0.25}), 39.0, 1e-9);
}

TEST(HyperbolicModelTest, ScaleMultipliesEverything) {
  HyperbolicModel m = MakeModel(10.0, 4.0, 3.0);
  m.Scale(2.0);
  EXPECT_NEAR(m.Eval({1.0, 1.0}), 34.0, 1e-9);
}

TEST(FitHyperbolicTest, RecoversCoefficients) {
  HyperbolicModel truth = MakeModel(12.0, 6.0, 5.0);
  std::vector<std::vector<double>> allocations;
  std::vector<double> costs;
  for (double c = 0.2; c <= 1.01; c += 0.2) {
    for (double m = 0.2; m <= 1.01; m += 0.2) {
      allocations.push_back({c, m});
      costs.push_back(truth.Eval({c, m}));
    }
  }
  auto fit = FitHyperbolic(allocations, costs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alphas[0], 12.0, 1e-6);
  EXPECT_NEAR(fit->alphas[1], 6.0, 1e-6);
  EXPECT_NEAR(fit->beta, 5.0, 1e-5);
}

TEST(FitHyperbolicTest, RejectsNonPositiveShares) {
  EXPECT_FALSE(FitHyperbolic({{0.0, 0.5}}, {1.0}).ok());
}

class PiecewiseModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = PiecewiseHyperbolicModel(/*piecewise_dim=*/1);
    PiecewiseSegment s1;
    s1.lo = 0.1;
    s1.hi = 0.4;
    s1.model = MakeModel(10.0, 2.0, 1.0);
    s1.label = "planA";
    PiecewiseSegment s2;
    s2.lo = 0.6;
    s2.hi = 0.9;
    s2.model = MakeModel(10.0, 0.5, 0.5);
    s2.label = "planB";
    model_.AddSegment(s1);
    model_.AddSegment(s2);
  }
  PiecewiseHyperbolicModel model_{1};
};

TEST_F(PiecewiseModelTest, SegmentLookupInside) {
  EXPECT_EQ(model_.SegmentIndexFor(0.2), 0u);
  EXPECT_EQ(model_.SegmentIndexFor(0.7), 1u);
}

TEST_F(PiecewiseModelTest, GapAssignedToCloserSegment) {
  EXPECT_EQ(model_.SegmentIndexFor(0.45), 0u);  // closer to [0.1,0.4]
  EXPECT_EQ(model_.SegmentIndexFor(0.55), 1u);  // closer to [0.6,0.9]
}

TEST_F(PiecewiseModelTest, OutsideRangeClampsToNearest) {
  EXPECT_EQ(model_.SegmentIndexFor(0.05), 0u);
  EXPECT_EQ(model_.SegmentIndexFor(0.95), 1u);
}

TEST_F(PiecewiseModelTest, EvalUsesCoveringSegment) {
  // mem=0.2 -> segment 0: 10/0.5 + 2/0.2 + 1 = 31.
  EXPECT_NEAR(model_.Eval({0.5, 0.2}), 31.0, 1e-9);
  // mem=0.8 -> segment 1: 10/0.5 + 0.5/0.8 + 0.5 = 21.125.
  EXPECT_NEAR(model_.Eval({0.5, 0.8}), 21.125, 1e-9);
}

TEST_F(PiecewiseModelTest, ScaleAllAffectsEverySegment) {
  double before0 = model_.Eval({0.5, 0.2});
  double before1 = model_.Eval({0.5, 0.8});
  model_.ScaleAll(1.5);
  EXPECT_NEAR(model_.Eval({0.5, 0.2}), before0 * 1.5, 1e-9);
  EXPECT_NEAR(model_.Eval({0.5, 0.8}), before1 * 1.5, 1e-9);
}

TEST_F(PiecewiseModelTest, ScaleSegmentAtOnlyTouchesOne) {
  double before0 = model_.Eval({0.5, 0.2});
  double before1 = model_.Eval({0.5, 0.8});
  model_.ScaleSegmentAt(0.8, 2.0);
  EXPECT_NEAR(model_.Eval({0.5, 0.2}), before0, 1e-9);
  EXPECT_NEAR(model_.Eval({0.5, 0.8}), before1 * 2.0, 1e-9);
}

TEST_F(PiecewiseModelTest, ResolveGapPrefersSegmentMatchingObservation) {
  // Observed cost close to segment 1's prediction at mem=0.5.
  double pred1 = model_.segments()[1].model.Eval({0.5, 0.5});
  size_t chosen = model_.ResolveGapPoint(0.5, {0.5, 0.5}, pred1 + 0.01);
  EXPECT_EQ(chosen, 1u);
  // Segment 1 now covers 0.5.
  EXPECT_EQ(model_.SegmentIndexFor(0.5), 1u);
  EXPECT_LE(model_.segments()[1].lo, 0.5);
}

TEST_F(PiecewiseModelTest, ResolveGapPrefersOtherSegmentToo) {
  double pred0 = model_.segments()[0].model.Eval({0.5, 0.5});
  size_t chosen = model_.ResolveGapPoint(0.5, {0.5, 0.5}, pred0 - 0.01);
  EXPECT_EQ(chosen, 0u);
  EXPECT_GE(model_.segments()[0].hi, 0.5);
}

}  // namespace
}  // namespace vdba
